// Command widening regenerates the tables and figures of López et al.,
// "Widening Resources: A Cost-effective Technique for Aggressive ILP
// Architectures" (MICRO-31, 1998) over the calibrated synthetic workbench.
//
// Usage:
//
//	widening [-loops N] [-seed S] <experiment>... | all | list
//	widening schedule -config 4w2 -regs 64 -kernel daxpy
//
// Experiments: table1 table2 table3 table4 table5 table6
//
//	fig2 fig3 fig4 fig6 fig7 fig8 fig9
//
// The full 1180-loop workbench makes fig3/fig8/fig9 take a while on one
// core; -loops trades fidelity for speed.
package main

import (
	"flag"
	"fmt"
	"os"
	"sort"
	"time"

	"repro/internal/core"
	"repro/internal/experiments"
)

func main() {
	if err := run(os.Args[1:]); err != nil {
		fmt.Fprintln(os.Stderr, "widening:", err)
		os.Exit(1)
	}
}

func run(args []string) error {
	if len(args) > 0 && args[0] == "schedule" {
		return runSchedule(args[1:])
	}

	fs := flag.NewFlagSet("widening", flag.ContinueOnError)
	loops := fs.Int("loops", 0, "workbench size (0 = the paper's 1180 loops)")
	seed := fs.Int64("seed", 0, "workbench seed (0 = calibrated default)")
	if err := fs.Parse(args); err != nil {
		return err
	}
	targets := fs.Args()
	if len(targets) == 0 {
		usage()
		return fmt.Errorf("no experiment selected")
	}
	if targets[0] == "list" {
		ids := experiments.IDs()
		titles := experiments.Titles()
		sort.Strings(ids)
		for _, id := range ids {
			fmt.Printf("%-8s %s\n", id, titles[id])
		}
		return nil
	}

	ctx, err := experiments.NewContext(*loops, *seed)
	if err != nil {
		return err
	}
	if targets[0] == "all" {
		targets = experiments.IDs()
	}
	for _, id := range targets {
		start := time.Now()
		res, err := ctx.Run(id)
		if err != nil {
			return err
		}
		fmt.Printf("== %s: %s (%.1fs)\n\n%s\n", res.ID(), res.Title(),
			time.Since(start).Seconds(), res.Render())
	}
	return nil
}

func runSchedule(args []string) error {
	fs := flag.NewFlagSet("schedule", flag.ContinueOnError)
	cfgStr := fs.String("config", "2w2", "configuration XwY")
	regs := fs.Int("regs", 64, "register file size (wide registers)")
	kernel := fs.String("kernel", "daxpy", "kernel name (see -kernel list)")
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *kernel == "list" {
		for _, k := range core.Kernels() {
			fmt.Printf("%-12s %d ops\n", k.Name, k.NumOps())
		}
		return nil
	}
	cfg, err := core.ParseConfig(*cfgStr)
	if err != nil {
		return err
	}
	l := core.Kernel(*kernel)
	if l == nil {
		return fmt.Errorf("unknown kernel %q (try -kernel list)", *kernel)
	}
	rep, err := core.ScheduleLoop(l, cfg, *regs)
	if err != nil {
		return err
	}
	fmt.Printf("kernel %s on %s\n%s", l.Name, cfg, rep.Format())
	return nil
}

func usage() {
	fmt.Fprintln(os.Stderr, `usage:
  widening [-loops N] [-seed S] <experiment>... | all | list
  widening schedule -config 4w2 -regs 64 -kernel daxpy|list`)
}
