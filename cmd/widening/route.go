package main

import (
	"context"
	"flag"
	"fmt"
	"net"
	"os"
	"os/signal"
	"strings"
	"syscall"
	"time"

	"repro/internal/fleet"
)

// runRoute starts the fleet router: a consistent-hash front door over N
// `widening serve` backends with health-checked membership, retries,
// hedging and mid-stream sweep failover (see internal/fleet).
//
//	widening route -addr HOST:PORT -backends host:port,host:port,...
//	               [-replication 2] [-probe-interval 2s] [-probe-timeout 1s]
//	               [-fail-after 2] [-rejoin-after 2]
//	               [-retries 3] [-retry-budget 0.1] [-hedge-after 0]
//	               [-quota-qps 0] [-quota-burst 0] [-quota-sweeps 0]
//	               [-breaker-threshold 3] [-breaker-cooldown 5s]
//	               [-attempt-timeout 2m] [-shutdown-timeout 10s]
//
// The process runs until SIGINT/SIGTERM, then drains in-flight requests
// for at most -shutdown-timeout before forcing the exit.
func runRoute(args []string) error {
	fs := flag.NewFlagSet("route", flag.ContinueOnError)
	addr := fs.String("addr", "127.0.0.1:8080", "listen address")
	backends := fs.String("backends", "", "comma-separated `widening serve` backends (host:port or http:// URLs); required")
	replication := fs.Int("replication", 0,
		"ownership replication factor R: each workload is kept warm on R distinct backends (0 = default 2, 1 = single-owner)")
	probeInterval := fs.Duration("probe-interval", 2*time.Second, "health probe period")
	probeTimeout := fs.Duration("probe-timeout", time.Second, "per-probe timeout")
	failAfter := fs.Int("fail-after", 2, "consecutive failures before a backend is drained from the ring")
	rejoinAfter := fs.Int("rejoin-after", 2, "consecutive probe successes before a drained backend rejoins (and is prewarmed)")
	retries := fs.Int("retries", 3, "total attempts per proxied request (idempotent failures only)")
	retryBudget := fs.Float64("retry-budget", 0,
		"retry/hedge budget as a fraction of admitted traffic (0 = default 0.1, negative = unlimited)")
	hedgeAfter := fs.Duration("hedge-after", 0,
		"eval straggler threshold before racing a second replica (0 = adaptive from observed p95, negative = off)")
	quotaQPS := fs.Float64("quota-qps", 0, "per-tenant admitted requests per second (0 = no rate quota)")
	quotaBurst := fs.Int("quota-burst", 0, "per-tenant burst above -quota-qps (0 = 2x the QPS)")
	quotaSweeps := fs.Int("quota-sweeps", 0, "per-tenant concurrent sweep cap (0 = unlimited)")
	breakerThreshold := fs.Int("breaker-threshold", 0,
		"consecutive data-path failures before a backend's circuit breaker opens (0 = default 3, negative = off)")
	breakerCooldown := fs.Duration("breaker-cooldown", 0, "open breaker cooldown before the half-open trial (0 = default 5s)")
	attemptTimeout := fs.Duration("attempt-timeout", 2*time.Minute, "per-attempt timeout for buffered proxied requests")
	shutdownTimeout := fs.Duration("shutdown-timeout", 10*time.Second, "bound on the graceful drain at shutdown")
	if err := fs.Parse(args); err != nil {
		return err
	}
	if fs.NArg() > 0 {
		return fmt.Errorf("route: unexpected arguments %v", fs.Args())
	}
	var targets []string
	for _, b := range strings.Split(*backends, ",") {
		if b = strings.TrimSpace(b); b != "" {
			targets = append(targets, b)
		}
	}
	if len(targets) == 0 {
		return fmt.Errorf("route: -backends is required (comma-separated widening serve addresses)")
	}

	rt, err := fleet.New(fleet.Options{
		Backends:         targets,
		Replication:      *replication,
		ProbeInterval:    *probeInterval,
		ProbeTimeout:     *probeTimeout,
		FailAfter:        *failAfter,
		RejoinAfter:      *rejoinAfter,
		Retry:            fleet.RetryPolicy{MaxAttempts: *retries},
		RetryBudgetRatio: *retryBudget,
		HedgeAfter:       *hedgeAfter,
		Quota: fleet.QuotaConfig{
			QPS:              *quotaQPS,
			Burst:            *quotaBurst,
			ConcurrentSweeps: *quotaSweeps,
		},
		Breaker: fleet.BreakerConfig{
			Threshold: *breakerThreshold,
			Cooldown:  *breakerCooldown,
		},
		AttemptTimeout: *attemptTimeout,
		Logf: func(format string, args ...any) {
			fmt.Fprintf(os.Stderr, "widening route: "+format+"\n", args...)
		},
	})
	if err != nil {
		return err
	}
	l, err := net.Listen("tcp", *addr)
	if err != nil {
		rt.Close()
		return err
	}
	fmt.Fprintf(os.Stderr, "widening route: listening on http://%s over %d backend(s): %s\n",
		l.Addr(), len(targets), strings.Join(targets, ", "))

	sigs := make(chan os.Signal, 1)
	signal.Notify(sigs, os.Interrupt, syscall.SIGTERM)
	defer signal.Stop(sigs)
	done := make(chan error, 1)
	go func() { done <- rt.Serve(l) }()
	select {
	case err := <-done:
		return err
	case sig := <-sigs:
		fmt.Fprintf(os.Stderr, "widening route: %v, draining (up to %s)\n", sig, *shutdownTimeout)
		ctx, cancel := context.WithTimeout(context.Background(), *shutdownTimeout)
		defer cancel()
		if err := rt.Shutdown(ctx); err != nil {
			fmt.Fprintf(os.Stderr, "widening route: drain exceeded %s, forcing close: %v\n", *shutdownTimeout, err)
			rt.Close()
		}
		return <-done
	}
}
