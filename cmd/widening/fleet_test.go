package main

import (
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"repro/internal/fleet"
	"repro/internal/serve"
)

func TestRunFleetErrors(t *testing.T) {
	cases := []struct {
		name string
		args []string
		want string
	}{
		{"no subcommand", nil, "want a subcommand"},
		{"unknown subcommand", []string{"evict"}, "unknown subcommand"},
		{"join without addr", []string{"join", "-router", "http://127.0.0.1:1"}, "-addr is required"},
		{"leave without addr", []string{"leave", "-router", "http://127.0.0.1:1"}, "-addr is required"},
		{"positional args", []string{"status", "extra"}, "unexpected arguments"},
	}
	for _, tc := range cases {
		err := runFleet(tc.args)
		if err == nil {
			t.Errorf("%s: runFleet succeeded, want error containing %q", tc.name, tc.want)
			continue
		}
		if !strings.Contains(err.Error(), tc.want) {
			t.Errorf("%s: error %q does not contain %q", tc.name, err, tc.want)
		}
	}
}

// TestRunFleetAgainstRouter drives the admin verb end to end: status,
// join a new backend, leave it again.
func TestRunFleetAgainstRouter(t *testing.T) {
	newBackend := func() string {
		srv, err := serve.New(serve.Options{Loops: 4, Seed: 1})
		if err != nil {
			t.Fatal(err)
		}
		ts := httptest.NewServer(srv.Handler())
		t.Cleanup(ts.Close)
		return ts.URL
	}
	rt, err := fleet.New(fleet.Options{
		Backends:      []string{newBackend()},
		ProbeInterval: 50 * time.Millisecond,
		RejoinAfter:   1,
	})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { rt.Close() })
	front := httptest.NewServer(rt.Handler())
	t.Cleanup(front.Close)

	if err := runFleet([]string{"status", "-router", front.URL}); err != nil {
		t.Fatalf("fleet status: %v", err)
	}
	extra := newBackend()
	if err := runFleet([]string{"join", "-router", front.URL, "-addr", extra}); err != nil {
		t.Fatalf("fleet join: %v", err)
	}
	if err := runFleet([]string{"join", "-router", front.URL, "-addr", extra}); err == nil {
		t.Fatal("duplicate join succeeded, want the router's 409 surfaced")
	}
	if err := runFleet([]string{"leave", "-router", front.URL, "-addr", extra}); err != nil {
		t.Fatalf("fleet leave: %v", err)
	}
	if err := runFleet([]string{"leave", "-router", front.URL, "-addr", extra}); err == nil {
		t.Fatal("leave of a non-member succeeded, want the router's 409 surfaced")
	}
}
