package main

import "testing"

func TestRunList(t *testing.T) {
	if err := run([]string{"list"}); err != nil {
		t.Fatalf("list: %v", err)
	}
}

func TestRunNoArgs(t *testing.T) {
	if err := run(nil); err == nil {
		t.Fatal("no arguments must error")
	}
}

func TestRunUnknownExperiment(t *testing.T) {
	if err := run([]string{"-loops", "5", "nope"}); err == nil {
		t.Fatal("unknown experiment must error")
	}
}

func TestRunFastExperiment(t *testing.T) {
	if err := run([]string{"-loops", "5", "table1", "table6"}); err != nil {
		t.Fatalf("table1 table6: %v", err)
	}
}

func TestRunScheduleKernel(t *testing.T) {
	if err := run([]string{"schedule", "-config", "2w2", "-regs", "64", "-kernel", "daxpy"}); err != nil {
		t.Fatalf("schedule: %v", err)
	}
	if err := run([]string{"schedule", "-kernel", "list"}); err != nil {
		t.Fatalf("kernel list: %v", err)
	}
	if err := run([]string{"schedule", "-kernel", "nope"}); err == nil {
		t.Fatal("unknown kernel must error")
	}
	if err := run([]string{"schedule", "-config", "bogus"}); err == nil {
		t.Fatal("bad config must error")
	}
}
