package main

import (
	"os"
	"path/filepath"
	"strings"
	"testing"
)

func TestRunList(t *testing.T) {
	if err := run([]string{"list"}); err != nil {
		t.Fatalf("list: %v", err)
	}
}

func TestRunNoArgs(t *testing.T) {
	if err := run(nil); err == nil {
		t.Fatal("no arguments must error")
	}
}

func TestRunUnknownExperiment(t *testing.T) {
	if err := run([]string{"-loops", "5", "nope"}); err == nil {
		t.Fatal("unknown experiment must error")
	}
}

func TestRunFastExperiment(t *testing.T) {
	if err := run([]string{"-loops", "5", "table1", "table6"}); err != nil {
		t.Fatalf("table1 table6: %v", err)
	}
}

func TestRunExportsArtifacts(t *testing.T) {
	dir := t.TempDir()
	if err := run([]string{"-loops", "5", "-out", dir, "-format", "json,csv,txt", "table1", "fig6"}); err != nil {
		t.Fatalf("export run: %v", err)
	}
	for _, name := range []string{
		"table1.json", "table1.csv", "table1.txt",
		"fig6.json", "fig6.csv", "fig6.txt",
	} {
		info, err := os.Stat(filepath.Join(dir, name))
		if err != nil {
			t.Errorf("missing export %s: %v", name, err)
			continue
		}
		if info.Size() == 0 {
			t.Errorf("empty export %s", name)
		}
	}
	if err := run([]string{"-loops", "5", "-out", dir, "-format", "yaml", "table1"}); err == nil {
		t.Error("unknown export format must error")
	}
}

func TestRunWorkloadFlag(t *testing.T) {
	if err := run([]string{"-loops", "5", "-workload", "kernels", "table6"}); err != nil {
		t.Fatalf("-workload kernels: %v", err)
	}
	if err := run([]string{"-loops", "5", "-workload", "nope", "table6"}); err == nil {
		t.Fatal("unknown workload must error")
	}
	if err := run([]string{"-workload", filepath.Join(t.TempDir(), "absent.json"), "table6"}); err == nil {
		t.Fatal("missing workload file must error")
	}
}

// TestScenarioNameWinsOverFile pins the -workload resolution order: a
// stray file in the working directory named like a registered scenario
// must not shadow the scenario.
func TestScenarioNameWinsOverFile(t *testing.T) {
	dir := t.TempDir()
	if err := os.WriteFile(filepath.Join(dir, "default"), []byte("junk"), 0o644); err != nil {
		t.Fatal(err)
	}
	t.Chdir(dir)
	if err := run([]string{"-loops", "5", "table6"}); err != nil {
		t.Fatalf("default run with a stray 'default' file in cwd: %v", err)
	}
}

func TestRunWorkloadSubcommand(t *testing.T) {
	if err := run([]string{"workload", "list"}); err != nil {
		t.Fatalf("workload list: %v", err)
	}
	if err := run([]string{"workload", "show", "-name", "strided", "-loops", "6"}); err != nil {
		t.Fatalf("workload show: %v", err)
	}
	if err := run([]string{"workload"}); err == nil {
		t.Fatal("missing subcommand must error")
	}
	if err := run([]string{"workload", "frobnicate"}); err == nil {
		t.Fatal("unknown subcommand must error")
	}
	if err := run([]string{"workload", "show", "-name", "nope"}); err == nil {
		t.Fatal("unknown workload must error")
	}
	if err := run([]string{"workload", "import"}); err == nil {
		t.Fatal("import without -in must error")
	}
}

// TestWorkloadExportImportRoundTrip pins the CLI contract CI smokes: an
// exported workload file imports cleanly and drives an experiment run.
func TestWorkloadExportImportRoundTrip(t *testing.T) {
	path := filepath.Join(t.TempDir(), "wl.json")
	if err := run([]string{"workload", "export", "-name", "divheavy", "-loops", "6", "-o", path}); err != nil {
		t.Fatalf("export: %v", err)
	}
	if err := run([]string{"workload", "import", "-in", path}); err != nil {
		t.Fatalf("import: %v", err)
	}
	if err := run([]string{"-workload", path, "table6"}); err != nil {
		t.Fatalf("experiment over imported workload: %v", err)
	}
	// A corrupted file must be rejected by the strict decoder.
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	bad := []byte(strings.Replace(string(data), `"kind": "load"`, `"kind": "vfma"`, 1))
	if string(bad) == string(data) {
		t.Fatal("corruption did not apply")
	}
	if err := os.WriteFile(path, bad, 0o644); err != nil {
		t.Fatal(err)
	}
	if err := run([]string{"workload", "import", "-in", path}); err == nil {
		t.Fatal("corrupted workload must fail import")
	}
}

func TestRunExportWritesManifest(t *testing.T) {
	dir := t.TempDir()
	if err := run([]string{"-loops", "5", "-out", dir, "-format", "json", "table1"}); err != nil {
		t.Fatalf("export run: %v", err)
	}
	data, err := os.ReadFile(filepath.Join(dir, "manifest.json"))
	if err != nil {
		t.Fatalf("missing manifest: %v", err)
	}
	for _, want := range []string{`"workload": "default"`, `"loops": 5`, `"table1"`} {
		if !strings.Contains(string(data), want) {
			t.Errorf("manifest missing %s:\n%s", want, data)
		}
	}
}

func TestRunScheduleKernel(t *testing.T) {
	if err := run([]string{"schedule", "-config", "2w2", "-regs", "64", "-kernel", "daxpy"}); err != nil {
		t.Fatalf("schedule: %v", err)
	}
	if err := run([]string{"schedule", "-kernel", "list"}); err != nil {
		t.Fatalf("kernel list: %v", err)
	}
	if err := run([]string{"schedule", "-kernel", "nope"}); err == nil {
		t.Fatal("unknown kernel must error")
	}
	if err := run([]string{"schedule", "-config", "bogus"}); err == nil {
		t.Fatal("bad config must error")
	}
}
