package main

import (
	"os"
	"path/filepath"
	"testing"
)

func TestRunList(t *testing.T) {
	if err := run([]string{"list"}); err != nil {
		t.Fatalf("list: %v", err)
	}
}

func TestRunNoArgs(t *testing.T) {
	if err := run(nil); err == nil {
		t.Fatal("no arguments must error")
	}
}

func TestRunUnknownExperiment(t *testing.T) {
	if err := run([]string{"-loops", "5", "nope"}); err == nil {
		t.Fatal("unknown experiment must error")
	}
}

func TestRunFastExperiment(t *testing.T) {
	if err := run([]string{"-loops", "5", "table1", "table6"}); err != nil {
		t.Fatalf("table1 table6: %v", err)
	}
}

func TestRunExportsArtifacts(t *testing.T) {
	dir := t.TempDir()
	if err := run([]string{"-loops", "5", "-out", dir, "-format", "json,csv,txt", "table1", "fig6"}); err != nil {
		t.Fatalf("export run: %v", err)
	}
	for _, name := range []string{
		"table1.json", "table1.csv", "table1.txt",
		"fig6.json", "fig6.csv", "fig6.txt",
	} {
		info, err := os.Stat(filepath.Join(dir, name))
		if err != nil {
			t.Errorf("missing export %s: %v", name, err)
			continue
		}
		if info.Size() == 0 {
			t.Errorf("empty export %s", name)
		}
	}
	if err := run([]string{"-loops", "5", "-out", dir, "-format", "yaml", "table1"}); err == nil {
		t.Error("unknown export format must error")
	}
}

func TestRunScheduleKernel(t *testing.T) {
	if err := run([]string{"schedule", "-config", "2w2", "-regs", "64", "-kernel", "daxpy"}); err != nil {
		t.Fatalf("schedule: %v", err)
	}
	if err := run([]string{"schedule", "-kernel", "list"}); err != nil {
		t.Fatalf("kernel list: %v", err)
	}
	if err := run([]string{"schedule", "-kernel", "nope"}); err == nil {
		t.Fatal("unknown kernel must error")
	}
	if err := run([]string{"schedule", "-config", "bogus"}); err == nil {
		t.Fatal("bad config must error")
	}
}
