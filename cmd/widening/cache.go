package main

import (
	"flag"
	"fmt"
	"strings"

	"repro/internal/core"
)

// runCache implements the persistent result cache maintenance
// subcommand:
//
//	widening cache stats -dir DIR   entries, bytes, epochs, stale debris
//	widening cache gc    -dir DIR   drop stale-epoch entries + orphan temp files
//	widening cache clear -dir DIR   wipe the cache entirely
//
// The cache itself is maintenance-free for correctness — corrupt entries
// are detected and recomputed on read, stale epochs are never read —
// these commands only inspect it and reclaim disk.
func runCache(args []string) error {
	if len(args) == 0 {
		return fmt.Errorf("cache: missing subcommand (want stats, gc or clear)")
	}
	sub, rest := args[0], args[1:]
	switch sub {
	case "stats", "gc", "clear":
	default:
		return fmt.Errorf("cache: unknown subcommand %q (want stats, gc or clear)", sub)
	}
	fs := flag.NewFlagSet("cache "+sub, flag.ContinueOnError)
	dir := fs.String("dir", "", "result cache directory (required; the -cache value of experiment runs)")
	if err := fs.Parse(rest); err != nil {
		return err
	}
	if *dir == "" {
		return fmt.Errorf("cache %s: -dir is required", sub)
	}
	store, err := core.OpenResultCache(*dir)
	if err != nil {
		return err
	}
	switch sub {
	case "stats":
		u, err := store.Usage()
		if err != nil {
			return err
		}
		fmt.Printf("cache %s\n", store.Dir())
		fmt.Printf("  entries %d (%s), format epoch %s\n", u.Entries, formatBytes(u.Bytes), core.ResultCacheEpoch)
		fmt.Printf("  epochs on disk: %s\n", strings.Join(u.Epochs, ", "))
		if u.StaleEntries > 0 {
			fmt.Printf("  stale: %d file(s) (%s) reclaimable by `widening cache gc -dir %s`\n",
				u.StaleEntries, formatBytes(u.StaleBytes), *dir)
		}
	case "gc":
		removed, freed, err := store.GC()
		if err != nil {
			return err
		}
		fmt.Printf("cache gc: removed %d file(s), freed %s\n", removed, formatBytes(freed))
	case "clear":
		u, _ := store.Usage()
		if err := store.Clear(); err != nil {
			return err
		}
		fmt.Printf("cache clear: removed %d file(s) (%s)\n",
			u.Entries+u.StaleEntries, formatBytes(u.Bytes+u.StaleBytes))
	}
	return nil
}

func formatBytes(n int64) string {
	switch {
	case n >= 1<<20:
		return fmt.Sprintf("%.1f MiB", float64(n)/(1<<20))
	case n >= 1<<10:
		return fmt.Sprintf("%.1f KiB", float64(n)/(1<<10))
	}
	return fmt.Sprintf("%d B", n)
}
