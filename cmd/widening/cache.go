package main

import (
	"flag"
	"fmt"
	"strings"

	"repro/internal/core"
)

// runCache implements the persistent result cache maintenance
// subcommand:
//
//	widening cache stats -dir DIR   entries, bytes, epochs, stale debris
//	widening cache gc    -dir DIR [-max-bytes N] [-max-entries N]
//	                                drop stale-epoch entries + orphan temp
//	                                files, then prune least-recently-used
//	                                live entries down to the caps
//	widening cache clear -dir DIR   wipe the cache entirely
//
// The cache itself is maintenance-free for correctness — corrupt entries
// are detected and recomputed on read, stale epochs are never read —
// these commands only inspect it and reclaim disk. The -max-* caps are
// the growth bound for stores shared by a serve fleet: N backends
// writing into one directory multiply the write rate, and a pruned
// entry is only ever a future recompute.
func runCache(args []string) error {
	if len(args) == 0 {
		return fmt.Errorf("cache: missing subcommand (want stats, gc or clear)")
	}
	sub, rest := args[0], args[1:]
	switch sub {
	case "stats", "gc", "clear":
	default:
		return fmt.Errorf("cache: unknown subcommand %q (want stats, gc or clear)", sub)
	}
	fs := flag.NewFlagSet("cache "+sub, flag.ContinueOnError)
	dir := fs.String("dir", "", "result cache directory (required; the -cache value of experiment runs)")
	var maxBytes int64
	var maxEntries int
	if sub == "gc" {
		fs.Int64Var(&maxBytes, "max-bytes", 0, "prune least-recently-used entries until the store fits this many bytes (0 = no byte cap)")
		fs.IntVar(&maxEntries, "max-entries", 0, "prune least-recently-used entries down to this count (0 = no entry cap)")
	}
	if err := fs.Parse(rest); err != nil {
		return err
	}
	if *dir == "" {
		return fmt.Errorf("cache %s: -dir is required", sub)
	}
	store, err := core.OpenResultCache(*dir)
	if err != nil {
		return err
	}
	switch sub {
	case "stats":
		u, err := store.Usage()
		if err != nil {
			return err
		}
		fmt.Printf("cache %s\n", store.Dir())
		fmt.Printf("  entries %d (%s), format epoch %s\n", u.Entries, formatBytes(u.Bytes), core.ResultCacheEpoch)
		fmt.Printf("  epochs on disk: %s\n", strings.Join(u.Epochs, ", "))
		if u.StaleEntries > 0 {
			fmt.Printf("  stale: %d file(s) (%s) reclaimable by `widening cache gc -dir %s`\n",
				u.StaleEntries, formatBytes(u.StaleBytes), *dir)
		}
	case "gc":
		removed, freed, err := store.GC()
		if err != nil {
			return err
		}
		fmt.Printf("cache gc: removed %d file(s), freed %s\n", removed, formatBytes(freed))
		if maxBytes > 0 || maxEntries > 0 {
			pruned, pfreed, err := store.BoundedGC(maxBytes, maxEntries)
			if err != nil {
				return err
			}
			fmt.Printf("cache gc: pruned %d least-recently-used entr(ies), freed %s\n", pruned, formatBytes(pfreed))
		}
	case "clear":
		u, _ := store.Usage()
		if err := store.Clear(); err != nil {
			return err
		}
		fmt.Printf("cache clear: removed %d file(s) (%s)\n",
			u.Entries+u.StaleEntries, formatBytes(u.Bytes+u.StaleBytes))
	}
	return nil
}

func formatBytes(n int64) string {
	switch {
	case n >= 1<<20:
		return fmt.Sprintf("%.1f MiB", float64(n)/(1<<20))
	case n >= 1<<10:
		return fmt.Sprintf("%.1f KiB", float64(n)/(1<<10))
	}
	return fmt.Sprintf("%d B", n)
}
