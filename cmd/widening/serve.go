package main

import (
	"context"
	"flag"
	"fmt"
	"net"
	"os"
	"os/signal"
	"strings"
	"syscall"
	"time"

	"repro/internal/core"
)

// runServe starts the long-lived design-space query server: warm
// per-workload engines behind an HTTP/JSON API (see internal/serve).
//
//	widening serve [-addr HOST:PORT] [-budget UNITS] [-preload a,b] [-loops N] [-seed S]
//	               [-cache DIR] [-join http://router:8000] [-shutdown-timeout 10s]
//
// The process runs until SIGINT/SIGTERM, then drains in-flight requests
// for at most -shutdown-timeout — a stuck stream cannot hold the exit
// hostage — and exits cleanly (CI's smoke relies on the clean exit).
// With -join, the server announces itself to a running `widening route`
// once it is listening (and retires itself again on graceful shutdown):
// fleet capacity scales by starting more serve processes, no router
// restart.
func runServe(args []string) error {
	fs := flag.NewFlagSet("serve", flag.ContinueOnError)
	addr := fs.String("addr", "127.0.0.1:8080", "listen address")
	joinRouter := fs.String("join", "",
		"fleet router base URL to join once listening (POST /v1/fleet/join; best-effort leave on shutdown)")
	budget := fs.Int64("budget", 0,
		"warm-engine memory budget in op units (0 = unlimited); idle LRU engines are evicted under pressure")
	preload := fs.String("preload", "", "comma-separated workloads whose engines are built at startup")
	loops := fs.Int("loops", 0, "suite size override for registry scenarios (0 = scenario defaults)")
	seed := fs.Int64("seed", 0, "seed override for registry scenarios (0 = scenario defaults)")
	cacheDir := fs.String("cache", "",
		"persistent result cache directory shared by all engines: restarts and rebuilt (evicted) engines rehydrate sweep cells from disk (empty = off)")
	shutdownTimeout := fs.Duration("shutdown-timeout", 10*time.Second,
		"bound on the graceful drain at shutdown; in-flight requests past it are abandoned")
	if err := fs.Parse(args); err != nil {
		return err
	}
	if fs.NArg() > 0 {
		return fmt.Errorf("serve: unexpected arguments %v", fs.Args())
	}
	var pre []string
	for _, name := range strings.Split(*preload, ",") {
		if name = strings.TrimSpace(name); name != "" {
			pre = append(pre, name)
		}
	}

	srv, err := core.NewServer(core.ServeOptions{
		Budget: *budget, Loops: *loops, Seed: *seed, Preload: pre, CacheDir: *cacheDir,
	})
	if err != nil {
		if srv == nil {
			return err
		}
		// Partial preload failure: the named engines that did build are
		// warm; a typo'd -preload entry must not take the whole fleet
		// member down cold.
		fmt.Fprintf(os.Stderr, "widening serve: warning: %v (continuing with the engines that warmed)\n", err)
	}
	l, err := net.Listen("tcp", *addr)
	if err != nil {
		return err
	}
	fmt.Fprintf(os.Stderr, "widening serve: listening on http://%s (%d preload target(s), budget %d)\n",
		l.Addr(), len(pre), *budget)
	if *joinRouter != "" {
		// Announce after the listener is up so the router's first probe
		// can succeed. Failures are fatal: an operator who asked to join a
		// fleet wants to know the fleet never heard about this member.
		if err := fleetMemberPost(*joinRouter, "join", l.Addr().String()); err != nil {
			l.Close()
			return fmt.Errorf("serve: -join %s: %w", *joinRouter, err)
		}
		fmt.Fprintf(os.Stderr, "widening serve: joined fleet at %s\n", *joinRouter)
		defer func() {
			// Best-effort retirement on the way out; the router's health
			// probes drain us anyway if this never arrives.
			if err := fleetMemberPost(*joinRouter, "leave", l.Addr().String()); err != nil {
				fmt.Fprintf(os.Stderr, "widening serve: leave %s: %v\n", *joinRouter, err)
			}
		}()
	}

	sigs := make(chan os.Signal, 1)
	signal.Notify(sigs, os.Interrupt, syscall.SIGTERM)
	defer signal.Stop(sigs)
	done := make(chan error, 1)
	go func() { done <- srv.Serve(l) }()
	select {
	case err := <-done:
		return err
	case sig := <-sigs:
		fmt.Fprintf(os.Stderr, "widening serve: %v, draining (up to %s)\n", sig, *shutdownTimeout)
		ctx, cancel := context.WithTimeout(context.Background(), *shutdownTimeout)
		defer cancel()
		if err := srv.Shutdown(ctx); err != nil {
			// The drain deadline passed with requests (a stuck stream?)
			// still in flight: force the close so the process exits
			// bounded, as -shutdown-timeout promises.
			fmt.Fprintf(os.Stderr, "widening serve: drain exceeded %s, forcing close: %v\n", *shutdownTimeout, err)
			srv.Close()
		}
		return <-done
	}
}
